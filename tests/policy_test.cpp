// src/policy: knob parsing, per-policy state machines (S3-FIFO queue
// transitions, SIEVE visited bit, ghost admission evidence), and the
// through-cache property that matters most — data written under any policy
// survives GC pressure (policy-evicted dirty blocks destage, never drop).
#include <vector>

#include <gtest/gtest.h>

#include "policy/policy.hpp"
#include "src_test_util.hpp"

namespace srcache::policy {
namespace {

// --- knob parsing ----------------------------------------------------------

TEST(PolicyParse, AcceptsExactNamesOnly) {
  EXPECT_EQ(parse_eviction("paper"), EvictionKind::kPaper);
  EXPECT_EQ(parse_eviction("s3fifo"), EvictionKind::kS3Fifo);
  EXPECT_EQ(parse_eviction("sieve"), EvictionKind::kSieve);
  EXPECT_EQ(parse_admission("always"), AdmissionKind::kAlways);
  EXPECT_EQ(parse_admission("ghost"), AdmissionKind::kGhost);

  for (const char* bad : {"", "Paper", "s3-fifo", "lru", "SIEVE", " sieve"}) {
    EXPECT_FALSE(parse_eviction(bad).has_value()) << bad;
  }
  for (const char* bad : {"", "Always", "banana", "ghost "}) {
    EXPECT_FALSE(parse_admission(bad).has_value()) << bad;
  }
}

TEST(PolicyParse, ToStringRoundTrips) {
  for (auto k : {EvictionKind::kPaper, EvictionKind::kS3Fifo,
                 EvictionKind::kSieve}) {
    EXPECT_EQ(parse_eviction(to_string(k)), k);
  }
  for (auto k : {AdmissionKind::kAlways, AdmissionKind::kGhost}) {
    EXPECT_EQ(parse_admission(to_string(k)), k);
  }
}

// --- paper policy ----------------------------------------------------------

TEST(PaperPolicy, KeepsDirtyAlwaysAndCleanIffHot) {
  PaperEviction p;
  EXPECT_TRUE(p.keep_on_gc(1, /*hot=*/true, /*dirty=*/false));
  EXPECT_FALSE(p.keep_on_gc(2, /*hot=*/false, /*dirty=*/false));
  EXPECT_TRUE(p.keep_on_gc(3, /*hot=*/false, /*dirty=*/true));
  EXPECT_TRUE(p.keep_on_gc(4, /*hot=*/true, /*dirty=*/true));
  EXPECT_EQ(p.stats().gc_kept, 3u);
  EXPECT_EQ(p.stats().gc_evicted, 1u);
}

// --- S3-FIFO ---------------------------------------------------------------

using Queue = S3FifoEviction::Queue;

TEST(S3Fifo, ColdCleanSmallBlockDemotesToGhost) {
  S3FifoEviction p(64);
  p.on_admit(7);
  EXPECT_EQ(p.queue_of(7), Queue::kSmall);
  EXPECT_FALSE(p.keep_on_gc(7, false, /*dirty=*/false));
  EXPECT_EQ(p.queue_of(7), Queue::kGhost);
  EXPECT_EQ(p.stats().gc_evicted, 1u);
}

TEST(S3Fifo, ReusedSmallBlockPromotesToMain) {
  S3FifoEviction p(64);
  p.on_admit(7);
  p.on_access(7);
  EXPECT_TRUE(p.keep_on_gc(7, true, false));
  EXPECT_EQ(p.queue_of(7), Queue::kMain);
  EXPECT_EQ(p.stats().promotions, 1u);
  // Promotion resets the credit: the next wrap without reuse evicts, and a
  // clean main eviction does not enter the ghost.
  EXPECT_FALSE(p.keep_on_gc(7, false, false));
  EXPECT_EQ(p.queue_of(7), Queue::kNone);
}

TEST(S3Fifo, GhostHitReadmitsStraightToMainWithOneCredit) {
  S3FifoEviction p(64);
  p.on_admit(7);
  ASSERT_FALSE(p.keep_on_gc(7, false, false));  // small -> ghost
  p.on_admit(7);                                // readmission
  EXPECT_EQ(p.queue_of(7), Queue::kMain);
  EXPECT_EQ(p.stats().ghost_hits, 1u);
  // The proven-reuse credit buys exactly one wrap.
  EXPECT_TRUE(p.keep_on_gc(7, false, false));
  EXPECT_FALSE(p.keep_on_gc(7, false, false));
}

TEST(S3Fifo, ColdDirtyGetsTwoExtraWrapsBeforeDestage) {
  S3FifoEviction p(64);
  p.on_admit(9);
  // Wrap 1: cold dirty in small is promoted with one credit, not evicted.
  EXPECT_TRUE(p.keep_on_gc(9, false, /*dirty=*/true));
  EXPECT_EQ(p.queue_of(9), Queue::kMain);
  // Wrap 2: the credit burns.
  EXPECT_TRUE(p.keep_on_gc(9, false, true));
  // Wrap 3: still no reuse — evict (the cache destages it), into the ghost.
  EXPECT_FALSE(p.keep_on_gc(9, false, true));
  EXPECT_EQ(p.queue_of(9), Queue::kGhost);
}

TEST(S3Fifo, AccessesExtendMainSurvivalUpToCap) {
  S3FifoEviction p(64);
  p.on_admit(3);
  p.on_access(3);
  ASSERT_TRUE(p.keep_on_gc(3, true, false));  // promoted, freq reset
  for (int i = 0; i < 10; ++i) p.on_access(3);  // freq caps at 3
  EXPECT_TRUE(p.keep_on_gc(3, false, false));
  EXPECT_TRUE(p.keep_on_gc(3, false, false));
  EXPECT_TRUE(p.keep_on_gc(3, false, false));
  EXPECT_FALSE(p.keep_on_gc(3, false, false));
}

TEST(S3Fifo, GhostFifoIsBounded) {
  S3FifoEviction p(16);  // clamps to the minimum ghost capacity
  ASSERT_EQ(p.ghost_capacity(), 16u);
  for (u64 lba = 0; lba < 17; ++lba) {
    p.on_admit(lba);
    ASSERT_FALSE(p.keep_on_gc(lba, false, false));
  }
  EXPECT_EQ(p.queue_of(0), Queue::kNone);   // oldest fell off
  EXPECT_EQ(p.queue_of(16), Queue::kGhost);  // newest remembered
}

TEST(S3Fifo, OnEvictForgetsResidencyIdempotently) {
  S3FifoEviction p(64);
  p.on_admit(5);
  p.on_evict(5);
  p.on_evict(5);
  EXPECT_EQ(p.queue_of(5), Queue::kNone);
  // An untracked block at GC is conservatively evicted (and remembered).
  EXPECT_FALSE(p.keep_on_gc(5, true, false));
  EXPECT_EQ(p.queue_of(5), Queue::kGhost);
}

// --- SIEVE -----------------------------------------------------------------

TEST(Sieve, VisitedBitBuysExactlyOneWrap) {
  SieveEviction p;
  p.on_admit(11);
  EXPECT_TRUE(p.tracked(11));
  EXPECT_FALSE(p.visited(11));
  p.on_access(11);
  EXPECT_TRUE(p.visited(11));
  // The hand passes: kept once, bit cleared.
  EXPECT_TRUE(p.keep_on_gc(11, true, false));
  EXPECT_FALSE(p.visited(11));
  // No reuse since: evicted and forgotten.
  EXPECT_FALSE(p.keep_on_gc(11, false, false));
  EXPECT_FALSE(p.tracked(11));
}

TEST(Sieve, NeverAccessedBlockEvictsAtFirstWrap) {
  SieveEviction p;
  p.on_admit(12);
  EXPECT_FALSE(p.keep_on_gc(12, false, /*dirty=*/true));
  EXPECT_FALSE(p.tracked(12));
  EXPECT_EQ(p.stats().gc_evicted, 1u);
}

// --- admission -------------------------------------------------------------

TEST(Admission, AlwaysAdmitsEverything) {
  AlwaysAdmission a;
  for (u64 lba = 0; lba < 8; ++lba) EXPECT_TRUE(a.admit(lba));
  EXPECT_EQ(a.stats().admitted, 8u);
  EXPECT_EQ(a.stats().rejected, 0u);
}

TEST(Admission, GhostRejectsFirstTouchAdmitsOnReuse) {
  GhostAdmission a(1024);
  EXPECT_FALSE(a.admit(42));  // no evidence yet
  EXPECT_TRUE(a.admit(42));   // remembered: reuse proven
  EXPECT_TRUE(a.admit(42));
  EXPECT_FALSE(a.admit(43));
  EXPECT_EQ(a.stats().rejected, 2u);
  EXPECT_EQ(a.stats().admitted, 2u);
  EXPECT_EQ(a.stats().ghost_hits, 2u);
}

TEST(Admission, GhostDecisionsAreDeterministicFunctionsOfTheSequence) {
  // Two instances fed the same lba sequence must make identical decisions —
  // the property the sharded engine's bit-identity rests on.
  GhostAdmission a(512), b(512);
  common::SplitMix64 rng(7);
  std::vector<u64> seq;
  for (int i = 0; i < 2000; ++i) seq.push_back(rng.next() % 700);
  for (const u64 lba : seq) EXPECT_EQ(a.admit(lba), b.admit(lba)) << lba;
  EXPECT_EQ(a.stats().admitted, b.stats().admitted);
  EXPECT_EQ(a.stats().rejected, b.stats().rejected);
}

TEST(PolicyFactory, BuildsTheRequestedKind) {
  EXPECT_EQ(make_eviction(EvictionKind::kPaper, 64)->kind(),
            EvictionKind::kPaper);
  EXPECT_EQ(make_eviction(EvictionKind::kS3Fifo, 64)->kind(),
            EvictionKind::kS3Fifo);
  EXPECT_EQ(make_eviction(EvictionKind::kSieve, 64)->kind(),
            EvictionKind::kSieve);
  EXPECT_EQ(make_admission(AdmissionKind::kAlways, 64)->kind(),
            AdmissionKind::kAlways);
  EXPECT_EQ(make_admission(AdmissionKind::kGhost, 64)->kind(),
            AdmissionKind::kGhost);
}

// --- through the cache -----------------------------------------------------

// Under every policy combination, dirty data written before heavy GC
// pressure must read back intact: a policy "eviction" of a dirty block is a
// destage to primary, never a drop.
TEST(PolicyThroughCache, DirtyDataSurvivesGcUnderEveryPolicy) {
  for (auto ev : {EvictionKind::kPaper, EvictionKind::kS3Fifo,
                  EvictionKind::kSieve}) {
    for (auto ad : {AdmissionKind::kAlways, AdmissionKind::kGhost}) {
      src::SrcConfig cfg = src::testutil::small_config();
      cfg.eviction = ev;
      cfg.admission = ad;
      src::testutil::Rig rig(cfg);

      const u64 per_sg =
          cfg.segments_per_sg() * cfg.segment_data_slots(true);
      const u64 blocks = (cfg.sg_count() + 2) * per_sg;
      sim::SimTime t = 0;
      for (u64 lba = 0; lba < blocks; ++lba) {
        const u64 tag = 0xBEEF0000 + lba;
        t = rig.write(t, lba, 1, &tag);
      }
      ASSERT_GT(rig.cache->extra().sg_reclaims, 0u)
          << to_string(ev) << "+" << to_string(ad);

      for (u64 lba = 0; lba < blocks; lba += 97) {
        u64 got = 0;
        t = rig.read(t, lba, 1, &got);
        EXPECT_EQ(got, 0xBEEF0000 + lba)
            << to_string(ev) << "+" << to_string(ad) << " lba " << lba;
      }
      EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
    }
  }
}

// The modern policies must actually destage cold dirty data under steady
// overwrite-free pressure (that is the WA mechanism), where the paper
// policy copies it forever.
TEST(PolicyThroughCache, S3FifoDestagesColdDirtyWherePaperCopies) {
  auto destages_under = [](EvictionKind ev) {
    src::SrcConfig cfg = src::testutil::small_config();
    cfg.eviction = ev;
    src::testutil::Rig rig(cfg);
    const u64 per_sg =
        cfg.segments_per_sg() * cfg.segment_data_slots(true);
    const u64 cold = per_sg / 2;  // write-once blocks, never touched again
    const u64 hot_base = u64{1} << 20;
    const u64 hot_span = per_sg;
    sim::SimTime t = 0;
    u64 j = 0;
    // Interleave the cold singles with hot rewrite traffic so no segment
    // group is ever wall-to-wall live (a nearly-full victim is destaged
    // wholesale, bypassing the per-block policy), and utilization stays
    // below UMAX — every destage observed here is the policy's call.
    for (u64 i = 0; i < cold; ++i) {
      t = rig.write(t, i);
      t = rig.write(t, hot_base + j++ % hot_span);
    }
    // Hot rewrites cycle the log: every wrap re-asks the policy about the
    // cold blocks.
    for (u64 k = 0; k < cfg.sg_count() * 6 * per_sg; ++k)
      t = rig.write(t, hot_base + j++ % hot_span);
    EXPECT_GT(rig.cache->extra().s2s_reclaims, 0u);
    EXPECT_EQ(rig.cache->extra().s2d_reclaims, 0u);
    return rig.cache->stats().destage_blocks;
  };
  EXPECT_EQ(destages_under(EvictionKind::kPaper), 0u);
  EXPECT_GT(destages_under(EvictionKind::kS3Fifo), 0u);
}

}  // namespace
}  // namespace srcache::policy
