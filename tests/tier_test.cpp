// tier::TierCache: compressed DRAM tier unit semantics — write absorption,
// compressed-size budgeting, incompressible bypass, dirty-bound destaging,
// read hits with CPU charges, demotion vs drop, and power-cut loss
// accounting. The inner cache is the small SRC test rig throughout, so
// destages and demotes ride the real provenance-attributed staging paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/ledger.hpp"
#include "src_test_util.hpp"
#include "tier/tier_cache.hpp"

namespace srcache::tier {
namespace {

using src::testutil::Rig;

TierConfig small_tier(u64 budget_blocks = 64) {
  TierConfig tc;
  tc.budget_bytes = budget_blocks * kBlockSize;
  tc.dirty_pct = 50;
  tc.destage_batch_blocks = 6;
  return tc;
}

sim::SimTime twrite(TierCache& t, sim::SimTime now, u64 lba, u8 comp_pct,
                    u32 n = 1, const u64* tags = nullptr) {
  cache::AppRequest r;
  r.now = now;
  r.is_write = true;
  r.lba = lba;
  r.nblocks = n;
  r.comp_pct = comp_pct;
  r.tags = tags;
  return t.submit(r);
}

sim::SimTime tread(TierCache& t, sim::SimTime now, u64 lba, u8 comp_pct,
                   u32 n = 1, u64* out = nullptr) {
  cache::AppRequest r;
  r.now = now;
  r.lba = lba;
  r.nblocks = n;
  r.comp_pct = comp_pct;
  r.tags_out = out;
  return t.submit(r);
}

TEST(TierConfig, ValidateRejectsBadKnobs) {
  auto bad = [](auto mutate) {
    TierConfig tc;
    mutate(tc);
    EXPECT_THROW(tc.validate(), std::invalid_argument);
  };
  bad([](TierConfig& tc) { tc.budget_bytes = 0; });
  bad([](TierConfig& tc) { tc.dirty_pct = 101; });
  bad([](TierConfig& tc) { tc.cpu_ns_per_byte = -1.0; });
  bad([](TierConfig& tc) { tc.destage_batch_blocks = 0; });
  bad([](TierConfig& tc) { tc.incompressible_pct = 101; });
  EXPECT_NO_THROW(TierConfig{}.validate());
}

TEST(TierCache, AbsorbsCompressibleWritesWithoutTouchingFlash) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  const u64 inner_before = rig.cache->stats().app_write_blocks;
  for (u64 i = 0; i < 16; ++i) twrite(tier, i * 100, i, /*comp_pct=*/50);
  EXPECT_EQ(tier.resident_blocks(), 16u);
  EXPECT_EQ(tier.dirty_blocks(), 16u);
  // Half-compressible: each block costs kBlockSize/2 of budget.
  EXPECT_EQ(tier.resident_compressed_bytes(), 16 * kBlockSize / 2);
  EXPECT_DOUBLE_EQ(tier.compression_ratio(), 0.5);
  // Below the dirty bound nothing reaches the flash cache.
  EXPECT_EQ(rig.cache->stats().app_write_blocks, inner_before);
  EXPECT_EQ(tier.tier_stats().destage_blocks, 0u);
  EXPECT_GT(tier.tier_stats().cpu_compress_ns, 0u);
}

TEST(TierCache, IncompressibleWritesBypassStraightDown) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  const u64 inner_before = rig.cache->stats().app_write_blocks;
  twrite(tier, 0, 0, /*comp_pct=*/100, 4);  // above incompressible_pct
  twrite(tier, 1, 10, /*comp_pct=*/0, 2);   // unstamped: treated the same
  EXPECT_EQ(tier.resident_blocks(), 0u);
  EXPECT_EQ(tier.tier_stats().bypass_blocks, 6u);
  EXPECT_EQ(rig.cache->stats().app_write_blocks, inner_before + 6);
  // No compression CPU was charged for bypassed blocks.
  EXPECT_EQ(tier.tier_stats().cpu_compress_ns, 0u);
}

TEST(TierCache, IncompressibleOverwriteEvictsTheStaleCompressedCopy) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  twrite(tier, 0, 7, /*comp_pct=*/40);
  ASSERT_EQ(tier.resident_blocks(), 1u);
  twrite(tier, 1, 7, /*comp_pct=*/100);  // content became incompressible
  EXPECT_EQ(tier.resident_blocks(), 0u);
  // A later read must come from below, not from a stale DRAM copy.
  u64 tag = 0;
  tread(tier, 2, 7, /*comp_pct=*/100, 1, &tag);
  EXPECT_EQ(tier.tier_stats().hit_blocks, 0u);
}

TEST(TierCache, ReadHitsDecompressAndReturnTheWrittenTag) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  const u64 tag = blockdev::make_tag(42, 1);
  twrite(tier, 0, 42, /*comp_pct=*/60, 1, &tag);
  u64 out = 0;
  tread(tier, 1, 42, /*comp_pct=*/60, 1, &out);
  EXPECT_EQ(out, tag);
  EXPECT_EQ(tier.tier_stats().hit_blocks, 1u);
  EXPECT_EQ(tier.tier_stats().miss_blocks, 0u);
  EXPECT_DOUBLE_EQ(tier.hit_ratio(), 1.0);
  EXPECT_GT(tier.tier_stats().cpu_decompress_ns, 0u);
}

// Regression: csize deltas are unsigned, so a shrinking overwrite must be
// applied subtract-then-add — forming `new - old` directly wraps and
// permanently inflates the resident total, evicting everything forever.
TEST(TierCache, OverwriteWithDifferentCompressibilityKeepsExactAccounting) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  twrite(tier, 0, 5, /*comp_pct=*/90);
  EXPECT_EQ(tier.resident_compressed_bytes(), kBlockSize * 90 / 100);
  twrite(tier, 1, 5, /*comp_pct=*/10);  // shrink
  EXPECT_EQ(tier.resident_compressed_bytes(), kBlockSize * 10 / 100);
  twrite(tier, 2, 5, /*comp_pct=*/80);  // grow again
  EXPECT_EQ(tier.resident_compressed_bytes(), kBlockSize * 80 / 100);
  EXPECT_EQ(tier.resident_blocks(), 1u);
  EXPECT_EQ(tier.dirty_blocks(), 1u);
}

TEST(TierCache, DirtyBoundDestagesOldestInPlace) {
  Rig rig;
  TierConfig tc = small_tier(/*budget_blocks=*/256);
  tc.dirty_pct = 25;  // 64 incompressible blocks' worth of dirty budget
  TierCache tier(tc, rig.cache.get(), rig.cache.get());
  // Enough distinct dirty blocks that the overflow destages more than one
  // inner segment's worth (provenance is attributed when a segment seals).
  for (u64 i = 0; i < 160; ++i) twrite(tier, i, i * 10, /*comp_pct=*/50);
  const TierStats& ts = tier.tier_stats();
  EXPECT_GT(ts.destage_blocks, 0u);
  // Destaged blocks stay resident (clean), they are not evicted.
  EXPECT_EQ(tier.resident_blocks(), 160u);
  EXPECT_LT(tier.dirty_blocks(), 160u);
  EXPECT_LE(tier.dirty_compressed_bytes(),
            tc.budget_bytes / 100 * tc.dirty_pct);
  // The write-back really landed below, attributed to its own cause.
  EXPECT_GT(rig.cache->provenance().cause_bytes(obs::WriteCause::kTierDestage),
            0u);
  EXPECT_NE(rig.cache->residence(0), src::SrcCache::Residence::kAbsent);
}

TEST(TierCache, BudgetEnforcementEvictsToTheCompressedBound) {
  Rig rig;
  TierConfig tc = small_tier(/*budget_blocks=*/32);
  TierCache tier(tc, rig.cache.get(), rig.cache.get());
  for (u64 i = 0; i < 256; ++i) {
    twrite(tier, i * 10, i, /*comp_pct=*/50);
    EXPECT_LE(tier.resident_compressed_bytes(), tc.budget_bytes) << i;
  }
  EXPECT_GT(tier.tier_stats().evict_blocks, 0u);
  // At 50% compressibility the budget holds ~2x its incompressible block
  // count.
  EXPECT_GT(tier.resident_blocks(), 32u);
}

TEST(TierCache, FlushDestagesEveryDirtyBlock) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  for (u64 i = 0; i < 12; ++i) twrite(tier, i * 10, i, /*comp_pct=*/50);
  ASSERT_EQ(tier.dirty_blocks(), 12u);
  tier.flush(1000);
  EXPECT_EQ(tier.dirty_blocks(), 0u);
  EXPECT_EQ(tier.dirty_compressed_bytes(), 0u);
  EXPECT_EQ(tier.resident_blocks(), 12u);  // still cached, just clean
  EXPECT_EQ(tier.tier_stats().destage_blocks, 12u);
}

TEST(TierCache, PowerCutLosesDirtyBlocksAndLedgersEveryOne) {
  Rig rig;
  fault::FaultLedger ledger;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  tier.set_fault_ledger(&ledger);
  for (u64 i = 0; i < 10; ++i) twrite(tier, i * 10, i, /*comp_pct=*/50);
  tier.flush(500);                                         // all clean now
  for (u64 i = 10; i < 14; ++i) twrite(tier, i * 100, i, /*comp_pct=*/50);
  ASSERT_EQ(tier.dirty_blocks(), 4u);
  tier.on_power_cut(2000);
  // DRAM is empty; exactly the dirty blocks were lost, each one ledgered as
  // an injected fault that was immediately detected — never silent.
  EXPECT_EQ(tier.resident_blocks(), 0u);
  EXPECT_EQ(tier.resident_compressed_bytes(), 0u);
  EXPECT_EQ(tier.dirty_blocks(), 0u);
  EXPECT_EQ(tier.tier_stats().lost_dirty_blocks, 4u);
  EXPECT_EQ(ledger.injected(), 4u);
  EXPECT_EQ(ledger.detected(), 4u);
  EXPECT_TRUE(ledger.reconciles());
}

TEST(TierCache, ReadMissFillsAreAdmittedClean) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  // LBAs never written: the inner cache fetches from primary, the tier
  // admits the fill clean.
  tread(tier, 0, 5000, /*comp_pct=*/50, 8);
  EXPECT_EQ(tier.resident_blocks(), 8u);
  EXPECT_EQ(tier.dirty_blocks(), 0u);
  EXPECT_EQ(tier.tier_stats().miss_blocks, 8u);
  // The same read again is now all tier hits.
  tread(tier, 1, 5000, /*comp_pct=*/50, 8);
  EXPECT_EQ(tier.tier_stats().hit_blocks, 8u);
}

TEST(TierCache, IncompressibleReadsAreNeverAdmitted) {
  Rig rig;
  TierCache tier(small_tier(), rig.cache.get(), rig.cache.get());
  tread(tier, 0, 5000, /*comp_pct=*/100, 4);
  EXPECT_EQ(tier.resident_blocks(), 0u);
  EXPECT_EQ(tier.tier_stats().bypass_blocks, 4u);
}

TEST(TierCache, GenericInnerCacheWorksWithoutSrcHooks) {
  // With src == nullptr destages forward as plain writes and clean
  // evictions drop — the tier must not require SrcCache.
  Rig rig;
  TierConfig tc = small_tier(/*budget_blocks=*/8);
  tc.dirty_pct = 25;
  TierCache tier(tc, rig.cache.get(), /*src=*/nullptr);
  for (u64 i = 0; i < 64; ++i) twrite(tier, i * 10, i, /*comp_pct=*/50);
  EXPECT_GT(tier.tier_stats().destage_blocks, 0u);
  EXPECT_GT(rig.cache->stats().app_write_blocks, 0u);
  EXPECT_EQ(tier.tier_stats().demote_blocks, 0u);
  EXPECT_LE(tier.resident_compressed_bytes(), tc.budget_bytes);
}

}  // namespace
}  // namespace srcache::tier
