// Combined-fault scenarios through the full SRC stack: faults stacking on
// top of each other (corruption discovered while the array is already
// degraded, a scrub racing a fault window), with the fault ledger
// reconciling at every step (fault/ledger.hpp).
#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "src_test_util.hpp"
#include "workload/generators.hpp"
#include "workload/runner.hpp"

namespace srcache::src {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using testutil::Rig;
using testutil::small_config;

// Wires an injector to a test rig: device hooks, the §4.3 fail-stop
// reaction, and the cache's detection/repair reports into the ledger.
FaultInjector make_injector(Rig& rig, const std::string& plan, u64 seed = 7) {
  FaultInjector inj(FaultPlan::parse_or_die(plan, seed));
  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig.ssds) devs.push_back(s.get());
  inj.attach_ssds(devs);
  inj.attach_primary(rig.primary.get());
  inj.set_failure_callback(
      [&rig](size_t ssd, sim::SimTime) { rig.cache->on_ssd_failure(ssd); });
  rig.cache->set_fault_ledger(&inj.ledger());
  return inj;
}

// Seals one dirty segment with known tags and returns them.
std::vector<u64> seal_one_dirty(Rig& rig, u64 lba_base = 0) {
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0xF000 + i;
    rig.write(0, lba_base + i, 1, &tags[i]);
  }
  return tags;
}

TEST(FaultInjection, CorruptionDiscoveredDuringDegradedReads) {
  // Fail-stop first, then silent corruption on a *second* device: reads in
  // degraded mode must still detect the corruption via CRC, and the double
  // fault must be counted (parity cannot repair it), never served silently.
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();  // SG 0 is the superblock

  FaultInjector inj(make_injector(
      rig, "at=1s fail dev=ssd1; at=2s corrupt dev=ssd0 lba=" +
               std::to_string(sg1_base + 1) + ".." +
               std::to_string(sg1_base + 2)));
  inj.advance(1 * sim::kSec, 0);
  ASSERT_TRUE(rig.ssds[1]->failed());
  inj.advance(2 * sim::kSec, 0);

  const auto before = rig.cache->extra();
  u64 served_corrupt = 0;
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(3 * sim::kSec, i, 1, &out);
    if (out != 0 && out != tags[i]) served_corrupt++;
  }
  EXPECT_EQ(served_corrupt, 0u) << "a corrupt tag was served as valid data";
  EXPECT_GT(rig.cache->extra().checksum_errors, before.checksum_errors);
  // ssd1 is down, so the stripe cannot repair ssd0's block: the loss is
  // explicit, not hidden.
  EXPECT_GT(rig.cache->extra().unrecoverable_blocks,
            before.unrecoverable_blocks);
  // Two faults on the ledger: the fail-stop (detected when it fired) and
  // the corruption (detected by CRC); neither is repairable here.
  EXPECT_EQ(inj.ledger().detected(), 2u);
  EXPECT_EQ(inj.ledger().repaired(), 0u);
  EXPECT_TRUE(inj.ledger().reconciles());
}

TEST(FaultInjection, DegradedCleanReadsRepairByRefetch) {
  // Same double fault, but on a clean (refetchable) block: primary storage
  // still holds the data, so degraded reads repair instead of losing it.
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  cfg.clean_redundancy = CleanRedundancy::kNPC;
  Rig rig(cfg);

  // Populate primary, then miss-fetch everything into a clean segment.
  const u64 cap = rig.cfg.segment_data_slots(false);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0xC000 + i;
    rig.primary->write(0, i, 1, std::span<const u64>(&tags[i], 1));
  }
  for (u64 i = 0; i < cap; ++i) rig.read(1 * sim::kMs * (i + 1), i, 1);

  const u64 sg1_base = rig.cfg.eg_blocks();
  FaultInjector inj(make_injector(
      rig, "at=1s fail dev=ssd1; at=2s corrupt dev=ssd0 lba=" +
               std::to_string(sg1_base + 1) + ".." +
               std::to_string(sg1_base + 2)));
  inj.advance(1 * sim::kSec, 0);
  inj.advance(2 * sim::kSec, 0);

  const auto before = rig.cache->extra();
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(3 * sim::kSec + sim::kMs * static_cast<sim::SimTime>(i), i, 1,
             &out);
    if (rig.cache->residence(i) != SrcCache::Residence::kAbsent)
      EXPECT_EQ(out, tags[i]) << "lba " << i;
  }
  EXPECT_EQ(rig.cache->extra().unrecoverable_blocks,
            before.unrecoverable_blocks);
  // The fail-stop and the corruption were both detected; the corrupted
  // block (the only repairable fault) was refetch-repaired.
  EXPECT_EQ(inj.ledger().detected(), 2u);
  EXPECT_EQ(inj.ledger().repaired(), 1u);
  EXPECT_TRUE(inj.ledger().reconciles());
}

TEST(FaultInjection, ScrubRacesAFaultWindow) {
  // Latent errors injected *between* scrub passes, including re-injection
  // into blocks the first pass already repaired: every pass must converge
  // (repair everything it can see) and the ledger must reconcile throughout.
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();
  const std::string range = std::to_string(sg1_base + 1) + ".." +
                            std::to_string(sg1_base + 4);

  FaultInjector inj(make_injector(rig, "at=1s latent dev=ssd0 lba=" + range +
                                           "; at=10s latent dev=ssd0 lba=" +
                                           range));
  // Pass 0: healthy array, nothing to find.
  auto rep = rig.cache->scrub(500 * sim::kMs);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_EQ(rep.unrecoverable, 0u);

  // Fault window opens; the next scrub pass finds and repairs the damage
  // (parity rebuild + write-back remaps the bad sectors).
  inj.advance(1 * sim::kSec, 0);
  rep = rig.cache->scrub(2 * sim::kSec);
  EXPECT_GT(rep.repaired, 0u);
  EXPECT_EQ(rep.unrecoverable, 0u);
  EXPECT_EQ(rig.ssds[0]->media_error_blocks(), 0u);
  EXPECT_EQ(inj.ledger().repaired(), inj.ledger().detected());
  EXPECT_TRUE(inj.ledger().reconciles());

  // Re-injection into the already-repaired blocks: the ledger re-opens the
  // records, and the next pass repairs them again.
  inj.advance(10 * sim::kSec, 0);
  rep = rig.cache->scrub(11 * sim::kSec);
  EXPECT_GT(rep.repaired, 0u);
  EXPECT_EQ(rep.unrecoverable, 0u);
  EXPECT_TRUE(inj.ledger().reconciles());

  // The data survived both windows.
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(20 * sim::kSec, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
}

TEST(FaultInjection, MediaErrorRepairRemapsTheSector) {
  // A latent sector error on a parity-protected block: the verified read
  // reconstructs the data and the write-back remaps the sector, so the
  // media error is physically gone afterwards (not just masked).
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid4;
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();

  FaultInjector inj(make_injector(
      rig, "at=1s latent dev=ssd0 lba=" + std::to_string(sg1_base + 1) +
               ".." + std::to_string(sg1_base + 2)));
  inj.advance(1 * sim::kSec, 0);
  ASSERT_EQ(rig.ssds[0]->media_error_blocks(), 1u);

  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(2 * sim::kSec, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_GE(rig.cache->extra().media_errors, 1u);
  EXPECT_GE(rig.cache->extra().parity_repairs, 1u);
  EXPECT_EQ(rig.ssds[0]->media_error_blocks(), 0u);  // remapped on write
  EXPECT_EQ(inj.ledger().detected(), 1u);
  EXPECT_EQ(inj.ledger().repaired(), 1u);
  EXPECT_TRUE(inj.ledger().reconciles());
}

TEST(FaultInjection, RunnerReportsTheDegradedWindow) {
  // End-to-end through workload::Runner: the injector is anchored at the
  // measurement window, fires mid-run, and the result carries the ledger
  // counters plus the healthy/degraded split.
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);

  FaultInjector inj(make_injector(rig, "at=ops:200 fail dev=ssd1"));
  workload::FioGen::Config gc;
  gc.span_blocks = 4096;
  gc.req_blocks = 4;
  gc.read_pct = 30;
  workload::FioGen gen(gc);

  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig.ssds) devs.push_back(s.get());
  workload::Runner runner(rig.cache.get(), devs);
  workload::RunConfig rc;
  rc.duration = 60 * sim::kSec;
  rc.max_ops = 600;
  rc.fault = &inj;
  const workload::RunResult res = runner.run({&gen}, rc);

  EXPECT_TRUE(res.fault.active);
  EXPECT_EQ(res.fault.events_fired, 1u);
  EXPECT_GE(res.fault.first_fault_s, 0.0);
  EXPECT_GT(res.fault.healthy_mbps, 0.0);
  EXPECT_GT(res.fault.degraded_read_lat.count + res.fault.degraded_write_lat.count, 0u);
  EXPECT_EQ(res.fault.injected, 1u);
  EXPECT_EQ(res.fault.detected, 1u);  // fail-stop is device-reported
  EXPECT_EQ(res.fault.injected, res.fault.detected + res.fault.undetected);
  EXPECT_TRUE(rig.ssds[1]->failed());
}

}  // namespace
}  // namespace srcache::src
