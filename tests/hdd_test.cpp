#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hpp"
#include "hdd/iscsi_target.hpp"
#include "hdd/sim_hdd.hpp"

namespace srcache::hdd {
namespace {

using sim::SimTime;

HddConfig small_hdd() {
  HddConfig cfg;
  cfg.capacity_bytes = 1 * GiB;
  return cfg;
}

TEST(SimHdd, SequentialIsCheap) {
  SimHdd d(small_hdd());
  const u64 mid = d.capacity_blocks() / 2;
  const auto r1 = d.write(0, mid, 16, {});  // long seek from block 0
  const auto r2 = d.write(r1.done, mid + 16, 16, {});  // head-adjacent
  const SimTime t1 = r1.done;
  const SimTime t2 = r2.done - r1.done;
  EXPECT_LT(t2, t1);
  EXPECT_LT(t2, 2 * sim::kMs);
}

TEST(SimHdd, RandomPaysSeekAndRotation) {
  SimHdd d(small_hdd());
  const auto r = d.read(0, d.capacity_blocks() / 2, 1, {});
  EXPECT_GT(r.done, 5 * sim::kMs);
}

TEST(SimHdd, SequentialBandwidthNearTransferRate) {
  SimHdd d(small_hdd());
  SimTime t = 0;
  const u64 ops = 2000;
  for (u64 i = 0; i < ops; ++i) t = d.write(t, i * 32, 32, {}).done;
  const double mbps = sim::mb_per_sec(ops * 32 * kBlockSize, t);
  EXPECT_GT(mbps, 100.0);
  EXPECT_LT(mbps, 155.0);
}

TEST(SimHdd, RandomIopsAreDisklike) {
  SimHdd d(small_hdd());
  common::Xoshiro256 rng(1);
  SimTime t = 0;
  const u64 ops = 500;
  for (u64 i = 0; i < ops; ++i)
    t = d.read(t, rng.below(d.capacity_blocks()), 1, {}).done;
  const double iops = static_cast<double>(ops) / sim::to_seconds(t);
  EXPECT_GT(iops, 50.0);
  EXPECT_LT(iops, 200.0);  // 7.2K RPM class
}

TEST(SimHdd, ContentAndFaults) {
  SimHdd d(small_hdd());
  const std::vector<u64> tags = {42};
  d.write(0, 7, 1, tags);
  std::vector<u64> out(1);
  d.read(0, 7, 1, out);
  EXPECT_EQ(out[0], 42u);
  d.fail();
  EXPECT_EQ(d.read(0, 7, 1, out).error, ErrorCode::kDeviceFailed);
}

IscsiConfig small_iscsi() {
  IscsiConfig cfg;
  cfg.disk.capacity_bytes = 1 * GiB;
  // Most tests exercise the disk path; the server page cache is tested
  // separately.
  cfg.server_cache_bytes = 0;
  cfg.dirty_limit_bytes = 0;
  return cfg;
}

TEST(IscsiTarget, ServerCacheServesRepeatedReads) {
  IscsiConfig cfg;
  cfg.disk.capacity_bytes = 1 * GiB;
  cfg.server_cache_bytes = 64 * MiB;
  cfg.dirty_limit_bytes = 16 * MiB;
  IscsiTarget t(cfg);
  const std::vector<u64> tags = {5};
  t.write(0, 10, 1, tags);
  std::vector<u64> out(1, 0);
  // First read may hit RAM (the write populated it); check content + speed.
  const auto r1 = t.read(sim::kSec, 10, 1, out);
  EXPECT_EQ(out[0], 5u);
  const auto r2 = t.read(2 * sim::kSec, 10, 1, out);
  EXPECT_EQ(out[0], 5u);
  EXPECT_LT(r2.done - 2 * sim::kSec, 2 * sim::kMs);  // RAM + link, no seek
  EXPECT_GT(t.ram_hits(), 0u);
  (void)r1;
}

TEST(IscsiTarget, ServerCacheAbsorbsWriteBursts) {
  IscsiConfig cfg;
  cfg.disk.capacity_bytes = 1 * GiB;
  cfg.server_cache_bytes = 128 * MiB;
  cfg.dirty_limit_bytes = 64 * MiB;
  IscsiTarget t(cfg);
  common::Xoshiro256 rng(4);
  // A random 4 KiB write burst within the dirty limit completes at link
  // speed, far faster than the spindles could absorb.
  sim::SimTime now = 0;
  const int ops = 500;
  for (int i = 0; i < ops; ++i)
    now = t.write(now, rng.below(t.capacity_blocks()), 1, {}).done;
  const double iops = static_cast<double>(ops) / sim::to_seconds(now);
  EXPECT_GT(iops, 2000.0);
}

TEST(IscsiTarget, CapacityIsHalfOfDisksRaid10) {
  IscsiTarget t(small_iscsi());
  EXPECT_EQ(t.capacity_blocks(), 4 * (1 * GiB / kBlockSize));
}

TEST(IscsiTarget, RoundTripContent) {
  IscsiTarget t(small_iscsi());
  const std::vector<u64> tags = {1, 2, 3, 4};
  ASSERT_TRUE(t.write(0, 100, 4, tags).ok());
  std::vector<u64> out(4);
  ASSERT_TRUE(t.read(0, 100, 4, out).ok());
  EXPECT_EQ(out, tags);
}

TEST(IscsiTarget, SequentialThroughputCappedByLink) {
  IscsiTarget t(small_iscsi());
  SimTime now = 0;
  const u64 ops = 500;
  // Deep pipeline of large sequential writes: the 1 Gbps link binds.
  using Entry = std::pair<SimTime, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < 8; ++i) heap.emplace(0, i);
  u64 cursor = 0;
  SimTime last = 0;
  for (u64 i = 0; i < ops; ++i) {
    auto [tm, s] = heap.top();
    heap.pop();
    const auto r = t.write(tm, cursor, 256, {});
    cursor = (cursor + 256) % (t.capacity_blocks() - 256);
    last = std::max(last, r.done);
    heap.emplace(r.done, s);
  }
  (void)now;
  const double mbps = sim::mb_per_sec(ops * 256 * kBlockSize, last);
  EXPECT_GT(mbps, 60.0);
  EXPECT_LT(mbps, 120.0);  // 1 Gbps iSCSI
}

TEST(IscsiTarget, RandomWritesAreSlow) {
  IscsiTarget t(small_iscsi());
  common::Xoshiro256 rng(3);
  SimTime now = 0;
  const u64 ops = 300;
  for (u64 i = 0; i < ops; ++i)
    now = t.write(now, rng.below(t.capacity_blocks()), 1, {}).done;
  const double iops = static_cast<double>(ops) / sim::to_seconds(now);
  EXPECT_LT(iops, 1500.0);  // HDD-array bound, far below any SSD
}

TEST(IscsiTarget, SurvivesSingleDiskFailure) {
  IscsiTarget t(small_iscsi());
  const std::vector<u64> tags = {9};
  ASSERT_TRUE(t.write(0, 50, 1, tags).ok());
  // RAID-10: every chunk is mirrored, so any single disk may die.
  for (size_t d = 0; d < t.num_disks(); ++d) {
    t.disk(d).fail();
    std::vector<u64> out(1, 0);
    EXPECT_TRUE(t.read(0, 50, 1, out).ok()) << "disk " << d;
    EXPECT_EQ(out[0], 9u);
    t.disk(d).heal();
  }
}

TEST(IscsiTarget, FlushPropagates) {
  IscsiTarget t(small_iscsi());
  t.write(0, 0, 8, {});
  EXPECT_TRUE(t.flush(0).ok());
}

}  // namespace
}  // namespace srcache::hdd
