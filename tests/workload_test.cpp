#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "block/mem_disk.hpp"
#include "cache/cache_device.hpp"
#include "workload/runner.hpp"
#include "workload/trace_synth.hpp"

namespace srcache::workload {
namespace {

// --- FioGen ---------------------------------------------------------------------

TEST(FioGen, StaysInSpan) {
  FioGen::Config cfg;
  cfg.span_blocks = 1000;
  cfg.offset_blocks = 5000;
  cfg.req_blocks = 8;
  FioGen g(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Op op = g.next();
    EXPECT_GE(op.lba, 5000u);
    EXPECT_LE(op.lba + op.nblocks, 6000u);
    EXPECT_EQ(op.nblocks, 8u);
  }
}

TEST(FioGen, AlignedToRequestSize) {
  FioGen::Config cfg;
  cfg.span_blocks = 4096;
  cfg.req_blocks = 16;
  FioGen g(cfg);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(g.next().lba % 16, 0u);
}

TEST(FioGen, PureWriteByDefault) {
  FioGen::Config cfg;
  cfg.span_blocks = 128;
  FioGen g(cfg);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(g.next().is_write);
}

TEST(FioGen, ReadPctRespected) {
  FioGen::Config cfg;
  cfg.span_blocks = 128;
  cfg.read_pct = 70;
  FioGen g(cfg);
  int reads = 0;
  for (int i = 0; i < 20000; ++i) reads += g.next().is_write ? 0 : 1;
  EXPECT_NEAR(reads / 20000.0, 0.7, 0.03);
}

TEST(FioGen, SequentialWraps) {
  FioGen::Config cfg;
  cfg.span_blocks = 32;
  cfg.req_blocks = 8;
  cfg.sequential = true;
  FioGen g(cfg);
  EXPECT_EQ(g.next().lba, 0u);
  EXPECT_EQ(g.next().lba, 8u);
  EXPECT_EQ(g.next().lba, 16u);
  EXPECT_EQ(g.next().lba, 24u);
  EXPECT_EQ(g.next().lba, 0u);  // wrap
}

TEST(FioGen, DeterministicPerSeed) {
  FioGen::Config cfg;
  cfg.span_blocks = 1024;
  cfg.seed = 99;
  FioGen a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next().lba, b.next().lba);
}

TEST(FioGen, RejectsEmptySpan) {
  FioGen::Config cfg;
  EXPECT_THROW(FioGen{cfg}, std::invalid_argument);
}

// --- Table 6 specs ----------------------------------------------------------------

TEST(TraceSpecs, GroupSizesMatchTable6) {
  EXPECT_EQ(traces_in_group(TraceGroup::kWrite).size(), 10u);
  EXPECT_EQ(traces_in_group(TraceGroup::kMixed).size(), 7u);
  EXPECT_EQ(traces_in_group(TraceGroup::kRead).size(), 5u);
}

TEST(TraceSpecs, KnownRows) {
  const auto& w = traces_in_group(TraceGroup::kWrite);
  EXPECT_STREQ(w[0].name, "prxy0");
  EXPECT_NEAR(w[0].avg_req_kb, 7.07, 1e-9);
  EXPECT_EQ(w[0].read_pct, 3);
  const auto& r = traces_in_group(TraceGroup::kRead);
  EXPECT_STREQ(r[3].name, "src21");
  EXPECT_EQ(r[3].read_pct, 99);
}

TEST(TraceSpecs, GroupCharacter) {
  // Average read ratio must rank Write < Mixed < Read.
  auto avg = [](TraceGroup g) {
    double s = 0;
    for (const auto& t : traces_in_group(g)) s += t.read_pct;
    return s / static_cast<double>(traces_in_group(g).size());
  };
  EXPECT_LT(avg(TraceGroup::kWrite), avg(TraceGroup::kMixed));
  EXPECT_LT(avg(TraceGroup::kMixed), avg(TraceGroup::kRead));
}

// --- TraceSynth -------------------------------------------------------------------

TraceSynth::Config synth_cfg(const char* name = "test", double req_kb = 12.0,
                             int read_pct = 30) {
  TraceSynth::Config cfg;
  cfg.spec = TraceSpec{name, req_kb, 10.0, read_pct};
  cfg.footprint_blocks = 100000;
  cfg.offset_blocks = 1 << 20;
  cfg.seed = 5;
  return cfg;
}

TEST(TraceSynth, MeanRequestSizeMatchesSpec) {
  TraceSynth g(synth_cfg("t", 12.0));
  double blocks = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) blocks += g.next().nblocks;
  const double mean_kb = blocks / n * 4.0;
  EXPECT_NEAR(mean_kb, 12.0, 1.5);
}

TEST(TraceSynth, ReadRatioMatchesSpec) {
  TraceSynth g(synth_cfg("t", 8.0, 72));
  int reads = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) reads += g.next().is_write ? 0 : 1;
  EXPECT_NEAR(reads / static_cast<double>(n), 0.72, 0.03);
}

TEST(TraceSynth, StaysInFootprint) {
  auto cfg = synth_cfg();
  TraceSynth g(cfg);
  for (int i = 0; i < 20000; ++i) {
    const Op op = g.next();
    EXPECT_GE(op.lba, cfg.offset_blocks);
    EXPECT_LE(op.lba + op.nblocks, cfg.offset_blocks + cfg.footprint_blocks);
  }
}

TEST(TraceSynth, SkewedAccessPattern) {
  // Zipf skew: a small fraction of blocks should receive most accesses.
  auto cfg = synth_cfg();
  cfg.seq_prob = 0.0;
  TraceSynth g(cfg);
  std::unordered_map<u64, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) counts[g.next().lba]++;
  std::vector<int> c;
  c.reserve(counts.size());
  for (auto& [lba, k] : counts) c.push_back(k);
  std::sort(c.rbegin(), c.rend());
  u64 top = 0, total = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    if (i < c.size() / 20) top += c[i];  // hottest 5% of touched lbas
    total += c[i];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.25);
}

TEST(TraceSynth, SequentialRunsOccur) {
  auto cfg = synth_cfg();
  cfg.seq_prob = 0.5;
  TraceSynth g(cfg);
  int sequential = 0;
  Op prev = g.next();
  for (int i = 0; i < 10000; ++i) {
    const Op op = g.next();
    if (op.lba == prev.lba + prev.nblocks) ++sequential;
    prev = op;
  }
  EXPECT_GT(sequential, 3000);
}

TEST(TraceSynth, RejectsEmptyFootprint) {
  auto cfg = synth_cfg();
  cfg.footprint_blocks = 0;
  EXPECT_THROW(TraceSynth{cfg}, std::invalid_argument);
}

// --- make_trace_set ---------------------------------------------------------------

TEST(TraceSet, FootprintsPartitionTheSpace) {
  const TraceSet set = make_trace_set(TraceGroup::kWrite, 8 * GiB, 1);
  ASSERT_EQ(set.traces.size(), 10u);
  u64 expected_offset = 0;
  for (const auto& t : set.traces) {
    EXPECT_EQ(t->config().offset_blocks, expected_offset);
    expected_offset += t->config().footprint_blocks;
  }
  EXPECT_EQ(set.total_blocks, expected_offset);
  // Total footprint within 5% of the request (rounding per trace).
  EXPECT_NEAR(static_cast<double>(set.total_blocks) * kBlockSize,
              static_cast<double>(8 * GiB), 0.05 * 8 * GiB);
}

TEST(TraceSet, FootprintProportionalToVolume) {
  const TraceSet set = make_trace_set(TraceGroup::kWrite, 8 * GiB, 1);
  // exch9 (110.46 GB volume) must dwarf mds0 (11.08 GB).
  const auto& exch9 = set.traces[1];
  const auto& mds0 = set.traces[2];
  EXPECT_GT(exch9->config().footprint_blocks,
            5 * mds0->config().footprint_blocks);
}

TEST(TraceSet, GeneratorsViewMatches) {
  const TraceSet set = make_trace_set(TraceGroup::kRead, 1 * GiB, 2);
  EXPECT_EQ(set.generators().size(), set.traces.size());
}

// --- Runner -----------------------------------------------------------------------

// A trivial pass-through cache over a MemDisk for runner mechanics tests.
class PassThroughCache final : public cache::CacheDevice {
 public:
  explicit PassThroughCache(blockdev::BlockDevice* dev) : dev_(dev) {}
  sim::SimTime submit(const cache::AppRequest& req) override {
    if (req.is_write) {
      stats_.app_write_ops++;
      stats_.app_write_blocks += req.nblocks;
      return dev_->write(req.now, req.lba, req.nblocks, {}).done;
    }
    stats_.app_read_ops++;
    stats_.app_read_blocks += req.nblocks;
    return dev_->read(req.now, req.lba, req.nblocks, {}).done;
  }
  sim::SimTime flush(sim::SimTime now) override { return now; }
  const cache::CacheStats& stats() const override { return stats_; }
  u64 cached_blocks() const override { return 0; }

 private:
  blockdev::BlockDevice* dev_;
  cache::CacheStats stats_;
};

TEST(Runner, MeasuresThroughputAgainstKnownDevice) {
  blockdev::MemDiskConfig mc;
  mc.capacity_blocks = 1 << 20;
  mc.op_latency = 100 * sim::kUs;  // 10K IOPS single-stream
  mc.bandwidth_mbps = 1e9;         // latency-bound
  blockdev::MemDisk disk(mc);
  PassThroughCache cache(&disk);
  Runner runner(&cache, {&disk});

  FioGen::Config fc;
  fc.span_blocks = 1 << 20;
  fc.req_blocks = 1;
  FioGen gen(fc);
  RunConfig rc;
  rc.threads_per_gen = 1;
  rc.iodepth = 1;
  rc.duration = 1 * sim::kSec;
  const RunResult res = runner.run({&gen}, rc);
  // Single serial device at 100us/op -> ~10000 ops in 1s.
  EXPECT_NEAR(static_cast<double>(res.ops), 10000.0, 500.0);
  EXPECT_NEAR(res.throughput_mbps, 10000.0 * 4096 / 1e6, 3.0);
  EXPECT_NEAR(res.io_amplification, 1.0, 0.01);
}

TEST(Runner, MoreStreamsSaturateSerialDevice) {
  blockdev::MemDiskConfig mc;
  mc.capacity_blocks = 1 << 16;
  mc.op_latency = 100 * sim::kUs;
  blockdev::MemDisk disk(mc);
  PassThroughCache cache(&disk);
  Runner runner(&cache, {&disk});
  FioGen::Config fc;
  fc.span_blocks = 1 << 16;
  FioGen gen(fc);
  RunConfig rc;
  rc.threads_per_gen = 4;
  rc.iodepth = 8;
  rc.duration = 500 * sim::kMs;
  const RunResult res = runner.run({&gen}, rc);
  // The device is serial: queue depth cannot raise throughput above 10K.
  EXPECT_LT(res.ops, 6000u);
  EXPECT_GT(res.ops, 4000u);
}

TEST(Runner, WarmupExcludedFromStats) {
  blockdev::MemDiskConfig mc;
  mc.capacity_blocks = 1 << 20;
  mc.op_latency = 100 * sim::kUs;
  blockdev::MemDisk disk(mc);
  PassThroughCache cache(&disk);
  Runner runner(&cache, {&disk});
  FioGen::Config fc;
  fc.span_blocks = 1 << 20;
  FioGen gen(fc);
  RunConfig rc;
  rc.threads_per_gen = 1;
  rc.iodepth = 1;
  rc.duration = 500 * sim::kMs;
  rc.warmup_bytes = 10 * MiB;  // 2560 ops of warm-up
  const RunResult res = runner.run({&gen}, rc);
  // Throughput reflects only the measured window (10K IOPS device):
  // ~5000 ops in 0.5 s regardless of the warm-up volume.
  EXPECT_NEAR(static_cast<double>(res.ops), 5000.0, 300.0);
  EXPECT_NEAR(res.io_amplification, 1.0, 0.01);
}

TEST(TraceSynth, ExtentHotnessClustersSpatially) {
  // With extent-granular hotness, the hottest blocks appear in contiguous
  // clumps of roughly extent size.
  auto cfg = synth_cfg();
  cfg.seq_prob = 0.0;
  cfg.extent_blocks = 32;
  TraceSynth g(cfg);
  std::unordered_map<u64, int> counts;
  for (int i = 0; i < 60000; ++i) counts[g.next().lba / 32]++;  // per extent
  int hot_extents = 0;
  for (auto& [e, c] : counts)
    if (c > 600) ++hot_extents;
  EXPECT_GT(hot_extents, 0);   // a few extents dominate
  EXPECT_LT(hot_extents, 40);  // ...and only a few
}

TEST(TraceSynth, DeterministicPerSeedAndConfig) {
  // Same seed + config must yield byte-identical op streams: the repro
  // pipeline (REPRO_JSON baselines, the multi-tenant acceptance runs)
  // depends on generators being pure functions of their configuration.
  auto cfg = synth_cfg();
  cfg.tenant = 3;
  TraceSynth a(cfg), b(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Op x = a.next(), y = b.next();
    EXPECT_EQ(x.is_write, y.is_write);
    EXPECT_EQ(x.lba, y.lba);
    EXPECT_EQ(x.nblocks, y.nblocks);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.tenant, 3u);
  }
}

TEST(TraceSynth, SeedChangesTheStream) {
  auto cfg = synth_cfg();
  TraceSynth a(cfg);
  cfg.seed += 1;
  TraceSynth b(cfg);
  int diff = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next().lba != b.next().lba) ++diff;
  EXPECT_GT(diff, 900);  // different seed, different placement
}

TEST(TenantMixGen, DeterministicMergeWithTenantTags) {
  // The mixed stream — source interleaving AND each source's own sequence —
  // replays identically for the same seeds, with every op carrying its
  // source's tenant tag.
  auto mk = [] {
    auto hot = synth_cfg();
    hot.tenant = 0;
    FioGen::Config sweep;
    sweep.span_blocks = 4096;
    sweep.seed = 11;
    sweep.tenant = 1;
    struct Streams {
      TraceSynth hot;
      FioGen sweep;
      TenantMixGen mix;
      Streams(const TraceSynth::Config& h, const FioGen::Config& s)
          : hot(h), sweep(s), mix({{&hot, 3.0}, {&sweep, 1.0}}, 17) {}
    };
    return std::make_unique<Streams>(hot, sweep);
  };
  auto a = mk();
  auto b = mk();
  int tenant1_ops = 0;
  for (int i = 0; i < 5000; ++i) {
    const Op x = a->mix.next(), y = b->mix.next();
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.lba, y.lba);
    EXPECT_EQ(x.nblocks, y.nblocks);
    EXPECT_EQ(x.is_write, y.is_write);
    if (x.tenant == 1) ++tenant1_ops;
  }
  // The 3:1 weights actually mix: the minority source is present in rough
  // proportion, so the determinism above covers both sources.
  EXPECT_GT(tenant1_ops, 1000);
  EXPECT_LT(tenant1_ops, 1600);
}

TEST(Runner, MaxOpsBudgetRespected) {
  blockdev::MemDiskConfig mc;
  blockdev::MemDisk disk(mc);
  PassThroughCache cache(&disk);
  Runner runner(&cache, {&disk});
  FioGen::Config fc;
  fc.span_blocks = 1024;
  FioGen gen(fc);
  RunConfig rc;
  rc.duration = 100 * sim::kSec;
  rc.max_ops = 123;
  EXPECT_EQ(runner.run({&gen}, rc).ops, 123u);
}

}  // namespace
}  // namespace srcache::workload
