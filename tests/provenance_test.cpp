// Write-provenance ledger: unit semantics (add/delta/merge/json) and the
// exactness contract — for every device, the sum over causes equals the
// device's total written bytes (DeviceStats::write_blocks x kBlockSize),
// per tenant and per device, after workloads that exercise every cause.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "src_test_util.hpp"
#include "tier/tier_cache.hpp"
#include "workload/runner.hpp"

namespace srcache::src {
namespace {

using obs::ProvenanceLedger;
using obs::WriteCause;
using testutil::Rig;
using testutil::small_config;

// --- ledger unit semantics -------------------------------------------------

TEST(ProvenanceLedger, AddTotalsAndZeroBytesDropped) {
  ProvenanceLedger a;
  EXPECT_TRUE(a.empty());
  a.add(0, 1, WriteCause::kUserWrite, 4096);
  a.add(0, 1, WriteCause::kUserWrite, 4096);
  a.add(1, obs::kSharedTenant, WriteCause::kParity, 8192);
  a.add(obs::kPrimaryDevice, 2, WriteCause::kDestage, 4096);
  a.add(3, 1, WriteCause::kGcRewrite, 0);  // no-op, creates no cell
  EXPECT_EQ(a.cells().size(), 3u);
  EXPECT_EQ(a.flash_bytes(), 16384u);
  EXPECT_EQ(a.primary_bytes(), 4096u);
  EXPECT_EQ(a.device_bytes(0), 8192u);
  EXPECT_EQ(a.device_bytes(1), 8192u);
  EXPECT_EQ(a.tenant_bytes(1), 8192u);
  EXPECT_EQ(a.tenant_bytes(obs::kSharedTenant), 8192u);
  EXPECT_EQ(a.cause_bytes(WriteCause::kParity), 8192u);
  EXPECT_EQ(a.cause_bytes(WriteCause::kDestage), 4096u);
}

TEST(ProvenanceLedger, DeltaSinceIsExactAndCanonical) {
  ProvenanceLedger a;
  a.add(0, 0, WriteCause::kUserWrite, 4096);
  a.add(1, 0, WriteCause::kParity, 4096);
  const ProvenanceLedger before = a;
  EXPECT_TRUE(a.delta_since(before).empty());  // identical snapshots
  a.add(0, 0, WriteCause::kUserWrite, 8192);
  a.add(2, 1, WriteCause::kMissFill, 4096);
  const ProvenanceLedger d = a.delta_since(before);
  // Untouched cells are dropped from the delta entirely.
  EXPECT_EQ(d.cells().size(), 2u);
  EXPECT_EQ(d.device_bytes(0), 8192u);
  EXPECT_EQ(d.device_bytes(1), 0u);
  EXPECT_EQ(d.device_bytes(2), 4096u);
  // before + delta == after, exactly.
  ProvenanceLedger sum = before;
  sum.merge_add(d);
  EXPECT_EQ(sum.flash_bytes(), a.flash_bytes());
  EXPECT_EQ(sum.cells(), a.cells());
}

TEST(ProvenanceLedger, JsonParsesAndSumsBalance) {
  ProvenanceLedger a;
  a.add(0, 0, WriteCause::kUserWrite, 12288);
  a.add(1, obs::kSharedTenant, WriteCause::kParity, 4096);
  a.add(obs::kPrimaryDevice, 0, WriteCause::kQuotaShed, 8192);
  const auto r = obs::parse_json(a.to_json());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  EXPECT_DOUBLE_EQ(v.find("flash_bytes")->number, 16384.0);
  EXPECT_DOUBLE_EQ(v.find("primary_bytes")->number, 8192.0);
  // by_cause sums to the grand total.
  double by_cause = 0.0;
  for (const auto& [name, val] : v.find("by_cause")->object) {
    (void)name;
    by_cause += val.number;
  }
  EXPECT_DOUBLE_EQ(by_cause, 24576.0);
  // devices[] and tenants[] each partition the same total.
  double dev_total = 0.0, ten_total = 0.0;
  for (const auto& e : v.find("devices")->array)
    dev_total += e.find("bytes")->number;
  for (const auto& e : v.find("tenants")->array)
    ten_total += e.find("bytes")->number;
  EXPECT_DOUBLE_EQ(dev_total, 24576.0);
  EXPECT_DOUBLE_EQ(ten_total, 24576.0);
}

// --- exactness against device stats ----------------------------------------

// Sum over causes == total bytes the device actually wrote, for every flash
// device and for primary. MemDisk counts at the block interface, the ledger
// at every call site that issues a write — agreement proves no write path
// is missing or double-counted.
void expect_exact_balance(const Rig& rig) {
  const ProvenanceLedger& led = rig.cache->provenance();
  for (size_t d = 0; d < rig.ssds.size(); ++d) {
    EXPECT_EQ(led.device_bytes(static_cast<u32>(d)),
              rig.ssds[d]->stats().write_blocks * kBlockSize)
        << "flash device " << d;
  }
  EXPECT_EQ(led.primary_bytes(),
            rig.primary->stats().write_blocks * kBlockSize);
  // The tenant axis partitions the same bytes: summing tenant_bytes over
  // every tenant that appears in the ledger must reproduce the grand total.
  std::set<u16> tenants;
  for (const auto& [key, cell] : led.cells()) {
    (void)cell;
    tenants.insert(key.second);
  }
  u64 by_tenant = 0;
  for (u16 t : tenants) by_tenant += led.tenant_bytes(t);
  EXPECT_EQ(by_tenant, led.flash_bytes() + led.primary_bytes());
}

// Writes enough distinct dirty blocks to fill `sgs` segment groups.
void fill_dirty(Rig& rig, double sgs, u64 lba_base = 0) {
  const u64 per_sg =
      rig.cfg.segments_per_sg() * rig.cfg.segment_data_slots(true);
  const u64 blocks = static_cast<u64>(sgs * static_cast<double>(per_sg));
  sim::SimTime t = 0;
  for (u64 i = 0; i < blocks; ++i) t = rig.write(t, lba_base + i);
}

TEST(ProvenanceBalance, FormatIsAllParity) {
  Rig rig;  // format(0) ran in the constructor
  const ProvenanceLedger& led = rig.cache->provenance();
  EXPECT_GT(led.flash_bytes(), 0u);
  EXPECT_EQ(led.flash_bytes(), led.cause_bytes(WriteCause::kParity));
  expect_exact_balance(rig);
}

TEST(ProvenanceBalance, MixedWorkloadExercisesCausesExactly) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  Rig rig(cfg);

  // Fill past capacity: user writes, parity/metadata, then reclamation
  // destages under pressure.
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 2.0);
  // Re-overwrite a small working set so Sel-GC copies live blocks forward.
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  const u64 ws = per_sg * (cfg.sg_count() / 2);
  common::Xoshiro256 rng(7);
  sim::SimTime t = 10 * sim::kSec;
  for (u64 i = 0; i < 4 * ws; ++i) t = rig.write(t, rng.below(ws));
  // Read a range never written (but within primary capacity): miss fills
  // fetched from primary and staged clean.
  for (u64 i = 0; i < 64; ++i) t = rig.read(t, 200000 + i);

  const ProvenanceLedger& led = rig.cache->provenance();
  EXPECT_GT(led.cause_bytes(WriteCause::kUserWrite), 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kParity), 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kMissFill), 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kGcRewrite), 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kDestage), 0u);
  expect_exact_balance(rig);
}

TEST(ProvenanceBalance, ChecksumRepairIsAttributed) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);
  // Seal one dirty segment with known tags, then corrupt one data block;
  // the checksum-verified read repairs it in place (repair_remap).
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0xF000 + i;
    rig.write(0, i, 1, &tags[i]);
  }
  const u64 sg1_base = rig.cfg.eg_blocks();  // SG 0 is the superblock
  rig.ssds[0]->corrupt(sg1_base + 1);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_GT(rig.cache->provenance().cause_bytes(WriteCause::kRepairRemap), 0u);
  expect_exact_balance(rig);
}

TEST(ProvenanceBalance, QuotaShedIsAttributedToTheTenant) {
  SrcConfig cfg = small_config();
  Rig rig(cfg);
  // Tenant 1 gets a tiny quota, fills it, then keeps writing: the overflow
  // is shed to primary and must land on (primary, tenant 1, quota_shed).
  rig.cache->set_tenant_quotas({1u << 20, 8});
  sim::SimTime t = 0;
  for (u64 i = 0; i < 256; ++i) {
    cache::AppRequest r;
    r.now = t;
    r.is_write = true;
    r.lba = 1000 + i;
    r.tenant = 1;
    t = rig.cache->submit(r);
  }
  const ProvenanceLedger& led = rig.cache->provenance();
  EXPECT_GT(led.cause_bytes(WriteCause::kQuotaShed), 0u);
  // Shed bytes go to primary, attributed to the over-quota tenant.
  u64 shed_t1 = 0;
  for (const auto& [key, cell] : led.cells()) {
    if (key.first == obs::kPrimaryDevice && key.second == 1)
      shed_t1 += cell[static_cast<size_t>(WriteCause::kQuotaShed)];
  }
  EXPECT_GT(shed_t1, 0u);
  expect_exact_balance(rig);
}

// Tier hand-off writes (destage of tier-dirty data, demotion of clean
// evictions whose flash copy is gone) carry their own causes, and the
// balance invariant must keep holding with a compressed DRAM tier driving
// the cache.
TEST(ProvenanceBalance, TierDestageAndDemoteAreAttributedExactly) {
  Rig rig;
  tier::TierConfig tc;
  tc.budget_bytes = 64 * kBlockSize;
  tc.dirty_pct = 25;
  tc.destage_batch_blocks =
      static_cast<u32>(rig.cfg.segment_data_slots(true));
  tier::TierCache tier(tc, rig.cache.get(), rig.cache.get());
  sim::SimTime t = 0;

  auto tier_write = [&](u64 lba, u8 pct) {
    cache::AppRequest r;
    r.now = ++t;
    r.is_write = true;
    r.lba = lba;
    r.nblocks = 1;
    r.comp_pct = pct;
    t = tier.submit(r);
  };

  // Clean tier residents: read-miss fills of primary-only blocks.
  for (u64 i = 0; i < 64; ++i) {
    cache::AppRequest r;
    r.now = ++t;
    r.lba = 50000 + i;
    r.nblocks = 1;
    r.comp_pct = 50;
    t = tier.submit(r);
  }
  // Churn the flash cache underneath until GC discards those clean copies.
  for (u64 i = 0; i < 8000; ++i) t = rig.write(t, i);
  // Dirty pressure through the tier: destages (dirty bound) and FIFO
  // evictions. The oldest residents are the clean 50000s — now absent
  // below, so their eviction demotes instead of dropping.
  for (u64 i = 0; i < 200; ++i) tier_write(10000 + i, 50);

  const ProvenanceLedger& led = rig.cache->provenance();
  EXPECT_GT(tier.tier_stats().destage_blocks, 0u);
  EXPECT_GT(tier.tier_stats().demote_blocks, 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kTierDestage), 0u);
  EXPECT_GT(led.cause_bytes(WriteCause::kTierDemote), 0u);
  expect_exact_balance(rig);
}

// --- RunResult window delta ------------------------------------------------

// RunConfig::provenance wires the ledger into the closed loop: the reported
// window delta must balance against the run's own ssd-stats delta — the
// same invariant as the cumulative ledger, but for the measured window.
TEST(ProvenanceBalance, RunnerWindowDeltaMatchesSsdDelta) {
  SrcConfig cfg = small_config();
  Rig rig(cfg);
  workload::FioGen::Config fc;
  fc.span_blocks =
      2 * cfg.num_ssds * cfg.region_bytes_per_ssd / kBlockSize;
  fc.req_blocks = 4;
  fc.read_pct = 30;
  fc.seed = 11;
  workload::FioGen gen(fc);
  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig.ssds) devs.push_back(s.get());
  workload::Runner runner(rig.cache.get(), devs);
  workload::RunConfig rc;
  rc.threads_per_gen = 2;
  rc.iodepth = 2;
  rc.duration = 2 * sim::kSec;
  rc.warmup_bytes = 4 * MiB;
  rc.provenance = &rig.cache->provenance();
  const workload::RunResult res = runner.run({&gen}, rc);

  ASSERT_GT(res.ops, 0u);
  ASSERT_FALSE(res.provenance.empty());
  // Window flash bytes == window ssd write blocks, exactly.
  EXPECT_EQ(res.provenance.flash_bytes(), res.ssd.write_blocks * kBlockSize);
  // And the window is a true delta: cumulative minus window is what the
  // warm-up wrote, which is also non-negative per cause.
  for (size_t c = 0; c < obs::kNumWriteCauses; ++c) {
    const auto cause = static_cast<WriteCause>(c);
    EXPECT_GE(rig.cache->provenance().cause_bytes(cause),
              res.provenance.cause_bytes(cause));
  }
}

}  // namespace
}  // namespace srcache::src
