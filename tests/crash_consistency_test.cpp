// Crash-consistency harness (fault/crash_harness.hpp): power cuts swept
// across segment-write boundaries must never admit torn state and the
// power-cut fault ledger must reconcile.
#include <gtest/gtest.h>

#include "fault/crash_harness.hpp"
#include "src_test_util.hpp"

namespace srcache::fault {
namespace {

CrashSweepConfig sweep_config(src::SrcRaidLevel raid) {
  CrashSweepConfig cfg;
  cfg.src = src::testutil::small_config();
  cfg.src.raid = raid;
  cfg.ops = 300;
  cfg.working_set_blocks = 1024;
  cfg.write_fraction = 0.7;
  cfg.seed = 1;
  cfg.max_boundaries = 10;  // subsample to keep the test fast
  return cfg;
}

void check(const CrashSweepResult& res) {
  EXPECT_TRUE(res.ok()) << [&res] {
    std::string all;
    for (const auto& v : res.violations) all += v + "\n";
    return all;
  }();
  EXPECT_GT(res.boundaries, 0u);
  EXPECT_EQ(res.cases, res.boundaries * 3);  // three cut points per boundary
  EXPECT_EQ(res.injected, res.cases);
  EXPECT_EQ(res.injected, res.detected + res.undetected);
  // A cut after the MS blocks or after the data always leaves a torn
  // segment for recovery to discard (detected); a cut before anything hits
  // media leaves no evidence (undetected). That split is exact.
  EXPECT_EQ(res.detected, 2 * res.boundaries);
  EXPECT_EQ(res.undetected, res.boundaries);
  EXPECT_GE(res.torn_segments, res.detected);
}

TEST(CrashConsistency, SweepHoldsUnderRaid5) {
  check(run_crash_sweep(sweep_config(src::SrcRaidLevel::kRaid5)));
}

TEST(CrashConsistency, SweepHoldsUnderRaid0) {
  check(run_crash_sweep(sweep_config(src::SrcRaidLevel::kRaid0)));
}

TEST(CrashConsistency, SweepHoldsUnderRaid1) {
  check(run_crash_sweep(sweep_config(src::SrcRaidLevel::kRaid1)));
}

TEST(CrashConsistency, FullSweepOnATinyWorkload) {
  // No subsampling: every seal boundary of a short workload.
  CrashSweepConfig cfg = sweep_config(src::SrcRaidLevel::kRaid5);
  cfg.ops = 120;
  cfg.max_boundaries = 0;
  check(run_crash_sweep(cfg));
}

TEST(CrashConsistency, DeterministicForASeed) {
  const CrashSweepConfig cfg = sweep_config(src::SrcRaidLevel::kRaid5);
  const CrashSweepResult a = run_crash_sweep(cfg);
  const CrashSweepResult b = run_crash_sweep(cfg);
  EXPECT_EQ(a.boundaries, b.boundaries);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.torn_segments, b.torn_segments);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.violations, b.violations);
}

// A small tier budget forces constant destaging, so segments still seal and
// every cut lands with dirty data split between DRAM and flash.
CrashSweepConfig tier_sweep_config(src::SrcRaidLevel raid) {
  CrashSweepConfig cfg = sweep_config(raid);
  cfg.tier_budget_bytes = 48 * kBlockSize;
  cfg.tier_dirty_pct = 50;
  return cfg;
}

TEST(CrashConsistency, SweepHoldsWithCompressedTier) {
  const CrashSweepResult res =
      run_crash_sweep(tier_sweep_config(src::SrcRaidLevel::kRaid5));
  check(res);
  // The recovery invariants hold AND the widened loss window is accounted:
  // at least one cut caught dirty blocks in DRAM, and every such loss is a
  // ledgered injected+detected pair (check() already proved res.ok(), which
  // includes the tier-ledger reconciliation).
  EXPECT_GT(res.tier_lost_dirty, 0u);
}

TEST(CrashConsistency, TierSweepHoldsUnderRaid0) {
  const CrashSweepResult res =
      run_crash_sweep(tier_sweep_config(src::SrcRaidLevel::kRaid0));
  check(res);
  EXPECT_GT(res.tier_lost_dirty, 0u);
}

TEST(CrashConsistency, TierSweepDeterministicForASeed) {
  const CrashSweepConfig cfg = tier_sweep_config(src::SrcRaidLevel::kRaid5);
  const CrashSweepResult a = run_crash_sweep(cfg);
  const CrashSweepResult b = run_crash_sweep(cfg);
  EXPECT_EQ(a.boundaries, b.boundaries);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.torn_segments, b.torn_segments);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.tier_lost_dirty, b.tier_lost_dirty);
  EXPECT_EQ(a.violations, b.violations);
}

}  // namespace
}  // namespace srcache::fault
